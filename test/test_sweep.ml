(* Tests for the domain-sharded sweep orchestration: the pool's ordering and
   error capture, byte-identical experiment docs at -j 1 vs -j 4, identical
   fuzz findings for a fixed seed set, and mid-run worker failure. *)

open Oamem_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  nn = 0 || go 0

(* --- the pool ------------------------------------------------------------------ *)

let test_pool_preserves_order () =
  let items = List.init 23 Fun.id in
  let results = Sweep.map ~jobs:4 (fun i -> i * i) items in
  check_int "all results" 23 (List.length results);
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> check_int "in input order" (i * i) v
      | Error e -> Alcotest.fail e)
    results

let test_pool_inline_matches_domains () =
  let items = List.init 9 Fun.id in
  let f i = Printf.sprintf "r%d" (i * 3) in
  check_bool "jobs:1 = jobs:4" true
    (Sweep.map ~jobs:1 f items = Sweep.map ~jobs:4 f items)

let test_pool_captures_exceptions () =
  let results =
    Sweep.map ~jobs:4
      (fun i -> if i = 2 then failwith "boom" else i)
      [ 0; 1; 2; 3 ]
  in
  (match List.nth results 2 with
  | Error msg -> check_bool "error mentions boom" true
      (contains msg "boom")
  | Ok _ -> Alcotest.fail "job 2 should have failed");
  (* the other jobs still completed *)
  List.iteri
    (fun i r -> if i <> 2 then check_bool "ok" true (r = Ok i))
    results

let test_pool_map_exn_raises () =
  match
    Sweep.map_exn ~jobs:2 (fun i -> if i = 1 then failwith "bad" else i)
      [ 0; 1 ]
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      check_bool "names the job" true
        (contains msg "job 1")

(* --- experiment sweeps: determinism ---------------------------------------------- *)

(* A cheap config still broad enough to produce tables, charts and
   artifacts from the cheap experiments. *)
let sweep_cfg =
  Experiments.Config.make ~threads:[ 1; 2 ] ~horizon_cycles:20_000
    ~fig4_size:60 ~fig6_size:500 ~schemes:[ "nr"; "oa-ver" ] ()

let sweep_exps =
  List.map Experiments.find [ "dwcas-leak"; "micro-validate"; "limbo-sweep" ]

let render_outcomes outcomes =
  String.concat ""
    (List.map
       (fun (o : Sweep.experiment_outcome) ->
         match o.Sweep.doc with
         | Ok doc -> Report.to_string doc
         | Error msg -> Printf.sprintf "FAILED %s: %s\n" o.Sweep.id msg)
       outcomes)

let test_sweep_docs_byte_identical () =
  let seq = Sweep.experiments ~jobs:1 sweep_cfg sweep_exps in
  let par = Sweep.experiments ~jobs:4 sweep_cfg sweep_exps in
  check_int "same count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Sweep.experiment_outcome) (b : Sweep.experiment_outcome) ->
      check_string "same id in same slot" a.Sweep.id b.Sweep.id;
      check_int "same index" a.Sweep.index b.Sweep.index)
    seq par;
  check_string "merged report byte-identical" (render_outcomes seq)
    (render_outcomes par);
  (* artifacts (CSV contents and filenames) are part of the contract too *)
  let artifact_dump outcomes =
    String.concat ""
      (List.concat_map
         (fun (o : Sweep.experiment_outcome) ->
           match o.Sweep.doc with
           | Ok doc ->
               List.map
                 (fun (a : Report.artifact) -> a.Report.filename ^ a.Report.content)
                 (Report.artifacts doc)
           | Error _ -> [])
         outcomes)
  in
  check_string "artifacts byte-identical" (artifact_dump seq)
    (artifact_dump par)

let test_sweep_internal_sharding_identical () =
  (* cfg.jobs shards *inside* an experiment (cells of the scheme x threads
     grid); the doc must not depend on it *)
  let e = Experiments.find "dwcas-leak" in
  let seq = e.Experiments.run sweep_cfg in
  let par =
    e.Experiments.run { sweep_cfg with Experiments.jobs = 4 }
  in
  check_string "internal sharding invisible" (Report.to_string seq)
    (Report.to_string par)

let test_sweep_reports_failing_job () =
  let boom =
    {
      Experiments.id = "boom";
      title = "always fails";
      paper_ref = "-";
      expected = "-";
      run = (fun _ -> failwith "deliberate failure");
    }
  in
  let outcomes =
    Sweep.experiments ~jobs:4 sweep_cfg
      [ Experiments.find "dwcas-leak"; boom; Experiments.find "micro-validate" ]
  in
  (match outcomes with
  | [ a; b; c ] ->
      check_bool "first ok" true (Result.is_ok a.Sweep.doc);
      check_string "failing job id" "boom" b.Sweep.id;
      (match b.Sweep.doc with
      | Error msg ->
          check_bool "error captured" true
            (contains msg "deliberate failure")
      | Ok _ -> Alcotest.fail "boom should fail");
      check_bool "later job still completes" true (Result.is_ok c.Sweep.doc)
  | _ -> Alcotest.fail "expected three outcomes")

(* The service experiment (E14) shards its scheme list across cfg.jobs
   domains and renders timelines per scheme; its doc and artifacts
   (timeline JSON/CSV) must be byte-identical at any -j. *)
let test_service_experiment_identical_across_jobs () =
  let e = Experiments.find "service" in
  let seq = e.Experiments.run sweep_cfg in
  let par = e.Experiments.run { sweep_cfg with Experiments.jobs = 4 } in
  check_string "service doc byte-identical across -j" (Report.to_string seq)
    (Report.to_string par);
  let artifact_dump doc =
    String.concat ""
      (List.map
         (fun (a : Report.artifact) -> a.Report.filename ^ a.Report.content)
         (Report.artifacts doc))
  in
  check_bool "service run produced timeline artifacts" true
    (Report.artifacts seq <> []);
  check_string "timeline artifacts byte-identical across -j"
    (artifact_dump seq) (artifact_dump par)

(* --- fuzz matrix: determinism ----------------------------------------------------- *)

let fuzz_cells =
  [
    (Fuzz.find_scenario "list-insert-delete", "oa-ver");
    (Fuzz.find_scenario "buggy-counter", "nr");
    (Fuzz.find_scenario "ms-queue", "ebr");
  ]

let finding_repr = function
  | None -> "none"
  | Some (f : Fuzz.finding) ->
      Printf.sprintf "%s/%s seed=%d prefix=[%s] err=%s" f.Fuzz.scenario
        f.Fuzz.scheme f.Fuzz.seed
        (String.concat ";"
           (List.map string_of_int (Array.to_list f.Fuzz.prefix)))
        f.Fuzz.error

let test_fuzz_matrix_identical_across_jobs () =
  let run jobs = Sweep.fuzz_matrix ~jobs ~max_runs:60 ~seed:5 fuzz_cells in
  let seq = run 1 and par = run 4 in
  check_int "same cells" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Sweep.fuzz_cell_result) (b : Sweep.fuzz_cell_result) ->
      check_string "same cell" (a.Sweep.scenario ^ "/" ^ a.Sweep.scheme)
        (b.Sweep.scenario ^ "/" ^ b.Sweep.scheme);
      check_int "same sampled schedules" a.Sweep.fuzz_runs b.Sweep.fuzz_runs;
      check_string "same finding" (finding_repr a.Sweep.finding)
        (finding_repr b.Sweep.finding))
    seq par

let test_fuzz_matrix_finds_seeded_bug () =
  let results =
    Sweep.fuzz_matrix ~jobs:4 ~max_runs:60 ~seed:5 fuzz_cells
  in
  let buggy =
    List.find (fun (r : Sweep.fuzz_cell_result) -> r.Sweep.scenario = "buggy-counter") results
  in
  match buggy.Sweep.finding with
  | None -> Alcotest.fail "seeded bug not found"
  | Some f ->
      (* shrunk on the coordinator, and the shrunk prefix must replay *)
      check_bool "shrink ran" true (buggy.Sweep.shrink_runs > 0);
      check_bool "shrunk repro replays" true (Fuzz.replay f <> None);
      (* clean cells stayed clean *)
      List.iter
        (fun (r : Sweep.fuzz_cell_result) ->
          if r.Sweep.scenario <> "buggy-counter" then
            check_bool (r.Sweep.scenario ^ " clean") true
              (r.Sweep.finding = None))
        results

let suite =
  [
    ("pool preserves order", `Quick, test_pool_preserves_order);
    ("pool inline = domains", `Quick, test_pool_inline_matches_domains);
    ("pool captures exceptions", `Quick, test_pool_captures_exceptions);
    ("pool map_exn raises", `Quick, test_pool_map_exn_raises);
    ("sweep docs byte-identical", `Quick, test_sweep_docs_byte_identical);
    ( "internal sharding identical",
      `Quick,
      test_sweep_internal_sharding_identical );
    ("sweep reports failing job", `Quick, test_sweep_reports_failing_job);
    ( "service experiment identical across jobs",
      `Quick,
      test_service_experiment_identical_across_jobs );
    ( "fuzz matrix identical across jobs",
      `Quick,
      test_fuzz_matrix_identical_across_jobs );
    ("fuzz matrix finds seeded bug", `Quick, test_fuzz_matrix_finds_seeded_bug);
  ]

let () = Alcotest.run "sweep" [ ("sweep", suite) ]
