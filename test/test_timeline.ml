(* Tests for the simulated-time timeline: window and phase charging rules,
   gauge registration and sampling, the allocation-free disabled path, the
   JSON/CSV exporters, and end-to-end byte-identity of a service-scenario
   timeline across repeated runs. *)

open Oamem_obs
open Oamem_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ev ~at kind = { Trace.tid = 0; at; kind }

(* --- window charging ------------------------------------------------------- *)

let test_window_math () =
  let tl = Timeline.create ~width:100 () in
  Timeline.set_enabled tl true;
  Timeline.note_event tl (ev ~at:5 (Trace.Alloc { addr = 0; words = 2 }));
  Timeline.note_event tl (ev ~at:199 (Trace.Free { addr = 0 }));
  Timeline.note_event tl (ev ~at:250 Trace.Restart);
  (* a span is charged to the window of its completion time *)
  Timeline.note_latency tl Profile.Op_insert ~now:105 ~dur:10;
  let ws = Timeline.window_aggs tl in
  check_int "three populated windows" 3 (List.length ws);
  List.iter2
    (fun expect (i, _) -> check_int "window index" expect i)
    [ 0; 1; 2 ] ws;
  let agg i = List.assoc i ws in
  check_int "alloc in window 0" 1 (Timeline.agg_count (agg 0) Timeline.Allocs);
  check_int "free in window 1" 1 (Timeline.agg_count (agg 1) Timeline.Frees);
  check_int "restart in window 2" 1
    (Timeline.agg_count (agg 2) Timeline.Restarts);
  (match Timeline.agg_latency (agg 1) Profile.Op_insert with
  | None -> Alcotest.fail "span missing from its completion window"
  | Some l ->
      check_int "one span" 1 l.Profile.count;
      check_int "exact max" 10 l.Profile.max_cycles;
      check_int "p99 of a singleton is the value" 10
        (Profile.percentile l 0.99));
  check_bool "window 0 has no spans" true
    (Timeline.agg_latency (agg 0) Profile.Op_insert = None)

(* Carried amounts: Reclaim_freed and Frames_released sum their payloads,
   not just count events. *)
let test_carried_amounts () =
  let tl = Timeline.create ~width:100 () in
  Timeline.set_enabled tl true;
  Timeline.note_event tl (ev ~at:10 (Trace.Reclaim_phase { freed = 7 }));
  Timeline.note_event tl (ev ~at:20 (Trace.Reclaim_phase { freed = 5 }));
  Timeline.note_event tl (ev ~at:30 (Trace.Frames_released { count = 3 }));
  let agg = List.assoc 0 (Timeline.window_aggs tl) in
  check_int "two reclaim phases" 2
    (Timeline.agg_count agg Timeline.Reclaim_phases);
  check_int "freed sums payloads" 12
    (Timeline.agg_count agg Timeline.Reclaim_freed);
  check_int "released sums counts" 3
    (Timeline.agg_count agg Timeline.Frames_released)

(* --- phase charging -------------------------------------------------------- *)

let test_phase_marker_order () =
  let tl = Timeline.create ~width:100 () in
  Timeline.set_enabled tl true;
  Timeline.note_event tl (ev ~at:50 (Trace.Alloc { addr = 0; words = 2 }));
  Timeline.phase tl ~at:100 "a";
  (* ingestion-time charging: this event's clock (80) predates the marker,
     but it arrives after — it belongs to "a" (a thread overshooting the
     phase horizon by one op) *)
  Timeline.note_event tl (ev ~at:80 (Trace.Free { addr = 0 }));
  Timeline.phase tl ~at:300 "b";
  Timeline.note_event tl (ev ~at:310 Trace.Restart);
  (* re-marking accumulates into the existing phase *)
  Timeline.phase tl ~at:400 "a";
  Timeline.note_event tl (ev ~at:410 (Trace.Free { addr = 4 }));
  let ps = Timeline.phase_aggs tl in
  check_string "first-marker order" "init,a,b"
    (String.concat "," (List.map fst ps));
  let agg name = List.assoc name ps in
  check_int "init got the pre-marker event" 1
    (Timeline.agg_count (agg "init") Timeline.Allocs);
  check_int "a got the overshoot event and the re-mark event" 2
    (Timeline.agg_count (agg "a") Timeline.Frees);
  check_int "b got its restart" 1
    (Timeline.agg_count (agg "b") Timeline.Restarts);
  (* labeling (by cycle) is distinct from charging (by marker order) *)
  check_string "cycle 0 labels init" "init" (Timeline.phase_of_cycle tl 0);
  check_string "cycle 150 labels a" "a" (Timeline.phase_of_cycle tl 150);
  check_string "cycle 350 labels b" "b" (Timeline.phase_of_cycle tl 350);
  check_string "cycle 500 labels the re-mark" "a"
    (Timeline.phase_of_cycle tl 500)

let test_empty_init_dropped () =
  let tl = Timeline.create ~width:100 () in
  Timeline.set_enabled tl true;
  Timeline.phase tl ~at:0 "only";
  Timeline.note_event tl (ev ~at:1 Trace.Restart);
  check_string "empty init dropped" "only"
    (String.concat "," (List.map fst (Timeline.phase_aggs tl)))

(* --- gauges ---------------------------------------------------------------- *)

let test_gauges () =
  let tl = Timeline.create ~width:100 () in
  let g0 = Timeline.register_gauge tl "unreclaimed" in
  let g1 = Timeline.register_gauge tl "frames_live" in
  check_int "dense ids" 0 g0;
  check_int "dense ids" 1 g1;
  check_int "re-register returns existing id" g0
    (Timeline.register_gauge tl "unreclaimed");
  check_string "names in id order" "unreclaimed,frames_live"
    (String.concat "," (Timeline.gauges tl));
  Timeline.set_enabled tl true;
  Timeline.phase tl ~at:0 "p";
  Timeline.sample_gauge tl ~at:10 g0 5;
  Timeline.sample_gauge tl ~at:20 g0 9;
  Timeline.sample_gauge tl ~at:120 g0 3;
  (match Timeline.agg_gauge (List.assoc 0 (Timeline.window_aggs tl)) g0 with
  | Some (last, mx) ->
      check_int "window last" 9 last;
      check_int "window max" 9 mx
  | None -> Alcotest.fail "window 0 should carry samples");
  (match Timeline.agg_gauge (List.assoc "p" (Timeline.phase_aggs tl)) g0 with
  | Some (last, mx) ->
      check_int "phase last" 3 last;
      check_int "phase max" 9 mx
  | None -> Alcotest.fail "phase should carry samples");
  check_bool "unsampled gauge is None" true
    (Timeline.agg_gauge (List.assoc "p" (Timeline.phase_aggs tl)) g1 = None)

(* --- reset ----------------------------------------------------------------- *)

let test_reset () =
  let tl = Timeline.create ~width:100 () in
  let g = Timeline.register_gauge tl "g" in
  Timeline.set_enabled tl true;
  Timeline.phase tl ~at:0 "warmup";
  Timeline.note_event tl (ev ~at:10 Trace.Restart);
  Timeline.sample_gauge tl ~at:10 g 1;
  Timeline.reset tl;
  check_int "windows dropped" 0 (List.length (Timeline.window_aggs tl));
  check_int "phases dropped" 0 (List.length (Timeline.phase_aggs tl));
  check_bool "still enabled" true (Timeline.enabled tl);
  check_int "gauge registration survives" g (Timeline.register_gauge tl "g");
  Timeline.note_event tl (ev ~at:500 Trace.Restart);
  check_int "ingestion works after reset" 1
    (List.length (Timeline.window_aggs tl))

(* --- disabled path is allocation-free -------------------------------------- *)

let test_disabled_allocation_free () =
  let tl = Timeline.create ~width:100 () in
  let e = ev ~at:42 Trace.Restart in
  Timeline.note_event tl e;
  Timeline.note_latency tl Profile.Op_lookup ~now:100 ~dur:3;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Timeline.note_event tl e;
    Timeline.note_latency tl Profile.Op_lookup ~now:100 ~dur:3
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "disabled ingestion allocates nothing (%.0f words)"
       allocated)
    true (allocated < 64.)

(* --- exporters ------------------------------------------------------------- *)

let small_service_spec scheme =
  {
    Service.scheme;
    threads = 2;
    initial = 256;
    window = 1_000;
    sample_interval = 500;
    seed = 11;
    phases = Service.default_phases ~horizon_cycles:40_000;
  }

let test_export_structure () =
  let r = Service.run (small_service_spec "oa-ver") in
  let j = Export.timeline_json r.Service.timeline in
  check_int "window_cycles" 1_000 Json.(to_int (member "window_cycles" j));
  let phases = Json.(to_list (member "phases" j)) in
  check_string "phase order follows the script" "steady,flash_crowd,churn_storm,pressure_wave"
    (String.concat ","
       (List.map (fun p -> Json.(to_str (member "name" p))) phases));
  check_int "windows populated" (List.length (Timeline.window_aggs r.Service.timeline))
    (List.length Json.(to_list (member "windows" j)));
  (* CSV: header and every row agree on width; one row per window *)
  let header, rows = Export.timeline_csv r.Service.timeline in
  check_int "csv rows = windows" (List.length (Timeline.window_aggs r.Service.timeline))
    (List.length rows);
  List.iter
    (fun row -> check_int "csv row width" (List.length header) (List.length row))
    rows;
  (* chrome counter tracks exist for the sampled gauges *)
  let counters = Export.timeline_counter_events r.Service.timeline in
  check_bool "counter tracks present" true (List.length counters > 0)

let test_service_byte_identical_across_runs () =
  let render r =
    Json.to_string (Export.timeline_json r.Service.timeline)
    ^
    let header, rows = Export.timeline_csv r.Service.timeline in
    String.concat "\n" (List.map (String.concat ",") (header :: rows))
  in
  let a = Service.run (small_service_spec "oa") in
  let b = Service.run (small_service_spec "oa") in
  check_string "same spec, byte-identical timeline" (render a) (render b);
  (* and the distilled SLA stats agree too *)
  let stats r =
    Format.asprintf "%a"
      (Format.pp_print_list Service.pp_phase_stats)
      (r.Service.per_phase @ [ r.Service.overall ])
  in
  check_string "same spec, identical phase stats" (stats a) (stats b)

(* Regression: the service scenario livelocked under imr — retire revoked
   the sampler and ballast bystander threads, whose squashed allocator
   anchor CASes then retried forever in the pressure wave.  The run must
   complete with every phase (the pressure wave included) reporting ops. *)
let test_service_completes_under_imr () =
  let r = Service.run (small_service_spec "imr") in
  check_int "all four phases reported" 4 (List.length r.Service.per_phase);
  List.iter
    (fun st ->
      check_bool (st.Service.phase ^ " made progress") true
        (st.Service.ops > 0))
    r.Service.per_phase;
  let wave = List.nth r.Service.per_phase 3 in
  check_bool "pressure wave exercised recovery" true
    (wave.Service.pressure_recoveries > 0)

let suite =
  [
    ("window math", `Quick, test_window_math);
    ("carried amounts", `Quick, test_carried_amounts);
    ("phase marker order", `Quick, test_phase_marker_order);
    ("empty init dropped", `Quick, test_empty_init_dropped);
    ("gauges", `Quick, test_gauges);
    ("reset", `Quick, test_reset);
    ("disabled path allocation-free", `Quick, test_disabled_allocation_free);
    ("export structure", `Quick, test_export_structure);
    ( "service timeline byte-identical",
      `Quick,
      test_service_byte_identical_across_runs );
    ( "service completes under imr",
      `Quick,
      test_service_completes_under_imr );
  ]

let () = Alcotest.run "timeline" [ ("timeline", suite) ]
