(* Tests for the virtual-memory simulator: frames, page table, mapping calls,
   copy-on-write semantics, remapping strategies and metrics. *)

open Oamem_engine
open Oamem_vmem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let g = Geometry.default
let pw = Geometry.page_words g
let ctx = Engine.external_ctx ()

let fresh ?(shared_region_pages = 1) () =
  Vmem.create ~max_pages:4096 ~shared_region_pages g

(* Map a fresh range and return its base address. *)
let mapped_range ?(npages = 4) vm =
  let addr = Vmem.reserve vm ~npages in
  Vmem.map_anon vm ctx ~vpage:(Geometry.page_of_addr g addr) ~npages;
  addr

(* --- Frames -------------------------------------------------------------- *)

let test_frames_alloc_free () =
  let f = Frames.create g in
  check_int "zero frame live" 1 (Frames.live f);
  let a = Frames.alloc f in
  let b = Frames.alloc f in
  check_bool "distinct" true (a <> b);
  check_int "live" 3 (Frames.live f);
  Frames.free f a;
  check_int "freed" 2 (Frames.live f);
  let c = Frames.alloc f in
  check_int "recycled id" a c;
  check_int "peak" 3 (Frames.peak f)

let test_frames_recycled_is_zeroed () =
  let f = Frames.create g in
  let a = Frames.alloc f in
  Atomic.set (Frames.word f ~frame:a ~off:7) 99;
  Frames.free f a;
  let b = Frames.alloc f in
  check_int "same frame" a b;
  check_int "zeroed" 0 (Atomic.get (Frames.word f ~frame:b ~off:7))

let test_frames_zero_frame_protected () =
  let f = Frames.create g in
  Alcotest.check_raises "no free of zero frame"
    (Invalid_argument "Frames.free: cannot free the zero frame") (fun () ->
      Frames.free f Frames.zero_frame);
  check_bool "intact" true (Frames.zero_frame_intact f)

let test_frames_capacity () =
  let f = Frames.create ~capacity:3 g in
  let _ = Frames.alloc f in
  let _ = Frames.alloc f in
  Alcotest.check_raises "out of frames" Frames.Out_of_frames (fun () ->
      ignore (Frames.alloc f))

let test_frames_paddr_distinct () =
  let f = Frames.create g in
  let a = Frames.alloc f in
  let b = Frames.alloc f in
  check_bool "paddrs disjoint" true
    (Frames.paddr f ~frame:a ~off:0 <> Frames.paddr f ~frame:b ~off:0);
  check_int "offset encoded"
    (Frames.paddr f ~frame:a ~off:0 + 5)
    (Frames.paddr f ~frame:a ~off:5)

(* --- Page table ---------------------------------------------------------- *)

let test_page_table_roundtrip () =
  let pt = Page_table.create ~max_pages:16 in
  List.iter
    (fun e ->
      Page_table.set pt 3 e;
      check_bool "roundtrip" true (Page_table.get pt 3 = e))
    [
      Page_table.Unmapped;
      Page_table.Cow_zero;
      Page_table.Frame 7;
      Page_table.Shared 9;
      Page_table.Frame 0;
    ]

let test_page_table_cas () =
  let pt = Page_table.create ~max_pages:4 in
  Page_table.set pt 1 Page_table.Cow_zero;
  check_bool "cas ok" true
    (Page_table.cas pt 1 ~expect:Page_table.Cow_zero
       ~desired:(Page_table.Frame 4));
  check_bool "cas stale fails" false
    (Page_table.cas pt 1 ~expect:Page_table.Cow_zero
       ~desired:(Page_table.Frame 5));
  check_bool "value" true (Page_table.get pt 1 = Page_table.Frame 4)

let test_page_table_out_of_range () =
  let pt = Page_table.create ~max_pages:4 in
  check_bool "oob reads unmapped" true (Page_table.get pt 100 = Page_table.Unmapped)

let page_table_encode_prop =
  QCheck.Test.make ~name:"page-table entry encoding is injective" ~count:200
    QCheck.(pair (int_bound 3) (int_bound 100000))
    (fun (tag, f) ->
      let e =
        match tag with
        | 0 -> Page_table.Unmapped
        | 1 -> Page_table.Cow_zero
        | 2 -> Page_table.Frame f
        | _ -> Page_table.Shared f
      in
      let pt = Page_table.create ~max_pages:2 in
      Page_table.set pt 0 e;
      Page_table.get pt 0 = e)

(* --- Mapping and access -------------------------------------------------- *)

let test_unmapped_access_faults () =
  let vm = fresh () in
  let addr = Vmem.reserve vm ~npages:1 in
  Alcotest.check_raises "segfault" (Vmem.Segfault addr) (fun () ->
      ignore (Vmem.load vm ctx addr))

let test_fresh_mapping_reads_zero () =
  let vm = fresh () in
  let addr = mapped_range vm in
  check_int "reads zero" 0 (Vmem.load vm ctx addr);
  check_int "reads zero anywhere" 0 (Vmem.load vm ctx (addr + (3 * pw) + 17));
  (* reads consume no frames *)
  check_int "no private frames" 0 (Vmem.resident_pages vm)

let test_store_faults_in_one_frame () =
  let vm = fresh () in
  let addr = mapped_range vm in
  let before = (Vmem.frames_live vm) in
  Vmem.store vm ctx addr 42;
  Vmem.store vm ctx (addr + 1) 43;
  (* same page: one frame *)
  let u = vm in
  check_int "one frame" (before + 1) (Vmem.frames_live u);
  check_int "one fault" 1 (Vmem.minor_faults u);
  check_int "read back" 42 (Vmem.load vm ctx addr);
  check_int "read back 2" 43 (Vmem.load vm ctx (addr + 1));
  (* a different page faults separately *)
  Vmem.store vm ctx (addr + pw) 7;
  check_int "two faults" 2 (Vmem.minor_faults vm)

let test_store_to_unmapped_faults () =
  let vm = fresh () in
  let addr = Vmem.reserve vm ~npages:1 in
  Alcotest.check_raises "segfault" (Vmem.Segfault addr) (fun () ->
      Vmem.store vm ctx addr 1)

let test_unmap_releases_frames_and_faults_later () =
  let vm = fresh () in
  let addr = mapped_range vm ~npages:2 in
  Vmem.store vm ctx addr 1;
  Vmem.store vm ctx (addr + pw) 2;
  let vpage = Geometry.page_of_addr g addr in
  let live_before = (Vmem.frames_live vm) in
  Vmem.unmap vm ctx ~vpage ~npages:2;
  check_int "frames released" (live_before - 2) (Vmem.frames_live vm);
  Alcotest.check_raises "segfault after unmap" (Vmem.Segfault addr) (fun () ->
      ignore (Vmem.load vm ctx addr))

let test_madvise_keeps_range_readable () =
  let vm = fresh () in
  let addr = mapped_range vm ~npages:2 in
  Vmem.store vm ctx addr 99;
  let vpage = Geometry.page_of_addr g addr in
  let live_before = (Vmem.frames_live vm) in
  Vmem.madvise_dontneed vm ctx ~vpage ~npages:2;
  (* frame released but the range still reads (as zero) *)
  check_int "frame released" (live_before - 1) (Vmem.frames_live vm);
  check_int "reads zero again" 0 (Vmem.load vm ctx addr);
  (* and can be written again, faulting in a fresh frame *)
  Vmem.store vm ctx addr 5;
  check_int "written" 5 (Vmem.load vm ctx addr)

let test_map_shared_aliases_pages () =
  let vm = fresh () in
  let addr = mapped_range vm ~npages:4 in
  let vpage = Geometry.page_of_addr g addr in
  Vmem.map_shared vm ctx ~vpage ~npages:4;
  (* all four pages alias the same shared frame: a write through one page is
     visible through every other page at the same offset *)
  Vmem.store vm ctx (addr + 3) 1234;
  check_int "alias page 1" 1234 (Vmem.load vm ctx (addr + pw + 3));
  check_int "alias page 3" 1234 (Vmem.load vm ctx (addr + (3 * pw) + 3))

let test_map_shared_releases_frames_but_inflates_rss () =
  let vm = fresh () in
  let addr = mapped_range vm ~npages:4 in
  let vpage = Geometry.page_of_addr g addr in
  for p = 0 to 3 do
    Vmem.store vm ctx (addr + (p * pw)) 1
  done;
  let live_before = Vmem.frames_live vm in
  check_int "4 resident" 4 (Vmem.resident_pages vm);
  Vmem.map_shared vm ctx ~vpage ~npages:4;
  check_int "private frames gone" (live_before - 4) (Vmem.frames_live vm);
  check_int "no resident pages" 0 (Vmem.resident_pages vm);
  (* the haywire Linux statistic: all 4 pages still counted *)
  check_int "linux rss counts shared pages" 4 (Vmem.linux_rss_pages vm)

let test_map_shared_chunked_syscalls () =
  (* shared region of 2 pages: mapping 8 pages costs 4 syscalls; remapping
     private costs 1. *)
  let eng = Engine.create ~nthreads:1 () in
  let vm = Vmem.create ~max_pages:4096 ~shared_region_pages:2 g in
  let addr = Vmem.reserve vm ~npages:8 in
  let vpage = Geometry.page_of_addr g addr in
  Engine.spawn eng ~tid:0 (fun ctx ->
      Vmem.map_anon vm ctx ~vpage ~npages:8;
      let s0 = (Engine.stats eng).Engine.syscalls in
      Vmem.map_shared vm ctx ~vpage ~npages:8;
      check_int "4 syscalls for 8 pages over 2-page region" (s0 + 4)
        (Engine.stats eng).Engine.syscalls;
      Vmem.remap_private vm ctx ~vpage ~npages:8;
      check_int "remap is 1 syscall" (s0 + 5) (Engine.stats eng).Engine.syscalls);
  Engine.run eng

let test_remap_private_detaches_alias () =
  let vm = fresh () in
  let addr = mapped_range vm ~npages:2 in
  let vpage = Geometry.page_of_addr g addr in
  Vmem.map_shared vm ctx ~vpage ~npages:2;
  Vmem.store vm ctx addr 77;
  Vmem.remap_private vm ctx ~vpage ~npages:2;
  check_int "fresh zero after remap" 0 (Vmem.load vm ctx addr);
  Vmem.store vm ctx addr 5;
  check_int "no alias" 0 (Vmem.load vm ctx (addr + pw))

let test_cas_semantics () =
  let vm = fresh () in
  let addr = mapped_range vm in
  Vmem.store vm ctx addr 10;
  check_bool "cas ok" true (Vmem.cas vm ctx addr ~expect:10 ~desired:11);
  check_bool "cas stale" false (Vmem.cas vm ctx addr ~expect:10 ~desired:12);
  check_int "value" 11 (Vmem.load vm ctx addr)

let test_cas_on_cow_page_faults_in_frame () =
  (* Footnote 2 of the paper: the failing CAS still consumes a frame. *)
  let vm = fresh () in
  let addr = mapped_range vm in
  let before = (Vmem.frames_live vm) in
  check_bool "cas fails" false (Vmem.cas vm ctx addr ~expect:555 ~desired:556);
  let u = vm in
  check_int "frame leaked in" (before + 1) (Vmem.frames_live u);
  check_int "counted as cow-cas fault" 1 (Vmem.cow_cas_faults u)

let test_cas_on_shared_page_does_not_fault () =
  (* The shared-mapping method avoids the leak. *)
  let vm = fresh () in
  let addr = mapped_range vm in
  let vpage = Geometry.page_of_addr g addr in
  Vmem.map_shared vm ctx ~vpage ~npages:4;
  let before = (Vmem.frames_live vm) in
  check_bool "cas fails" false (Vmem.cas vm ctx addr ~expect:555 ~desired:556);
  let u = vm in
  check_int "no frame consumed" before (Vmem.frames_live u);
  check_int "no cow-cas fault" 0 (Vmem.cow_cas_faults u)

let test_fetch_and_add () =
  let vm = fresh () in
  let addr = mapped_range vm in
  check_int "faa from zero" 0 (Vmem.fetch_and_add vm ctx addr 5);
  check_int "faa again" 5 (Vmem.fetch_and_add vm ctx addr 3);
  check_int "total" 8 (Vmem.load vm ctx addr)

let test_dwcas () =
  let vm = fresh () in
  let addr = mapped_range vm in
  let addr = addr land lnot 1 in
  Vmem.store vm ctx addr 1;
  Vmem.store vm ctx (addr + 1) 2;
  check_bool "dwcas ok" true
    (Vmem.dwcas vm ctx addr ~expect0:1 ~expect1:2 ~desired0:3 ~desired1:4);
  check_int "w0" 3 (Vmem.load vm ctx addr);
  check_int "w1" 4 (Vmem.load vm ctx (addr + 1));
  check_bool "dwcas stale tag fails" false
    (Vmem.dwcas vm ctx addr ~expect0:3 ~expect1:9 ~desired0:0 ~desired1:0);
  Alcotest.check_raises "odd addr rejected"
    (Invalid_argument "Vmem.dwcas: addr must be even") (fun () ->
      ignore
        (Vmem.dwcas vm ctx (addr + 1) ~expect0:0 ~expect1:0 ~desired0:0
           ~desired1:0))

let test_null_page_reserved () =
  let vm = fresh () in
  Alcotest.check_raises "null deref faults" (Vmem.Segfault 0) (fun () ->
      ignore (Vmem.load vm ctx 0))

let test_zero_frame_never_written () =
  let vm = fresh () in
  let addr = mapped_range vm in
  ignore (Vmem.load vm ctx addr);
  Vmem.store vm ctx addr 1;
  ignore (Vmem.cas vm ctx (addr + pw) ~expect:0 ~desired:3);
  check_bool "zero frame intact" true (Frames.zero_frame_intact (Vmem.frames vm))

let test_reserve_disjoint () =
  let vm = fresh () in
  let a = Vmem.reserve vm ~npages:3 in
  let b = Vmem.reserve vm ~npages:2 in
  check_bool "disjoint" true (b >= a + (3 * pw))

(* Model-based property: random stores and loads against a Hashtbl oracle. *)
let vmem_model_prop =
  QCheck.Test.make ~name:"vmem load/store matches flat-memory model" ~count:30
    QCheck.(list (pair (int_bound 2047) small_int))
    (fun writes ->
      let vm = fresh () in
      let addr0 = mapped_range vm ~npages:4 in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (off, v) ->
          Vmem.store vm ctx (addr0 + off) v;
          Hashtbl.replace model off v)
        writes;
      List.for_all
        (fun (off, _) -> Vmem.load vm ctx (addr0 + off) = Hashtbl.find model off)
        writes)

(* Frame accounting conservation under random madvise/unmap cycles. *)
let vmem_frames_conservation_prop =
  QCheck.Test.make ~name:"frames released by madvise equal frames faulted in"
    ~count:30
    QCheck.(list (int_bound 7))
    (fun pages ->
      let vm = fresh () in
      let addr0 = mapped_range vm ~npages:8 in
      let vpage = Geometry.page_of_addr g addr0 in
      let baseline = (Vmem.frames_live vm) in
      List.iter (fun p -> Vmem.store vm ctx (addr0 + (p * pw)) 1) pages;
      Vmem.madvise_dontneed vm ctx ~vpage ~npages:8;
      (Vmem.frames_live vm) = baseline)

let suite =
  [
    ("frames alloc/free", `Quick, test_frames_alloc_free);
    ("frames recycled zeroed", `Quick, test_frames_recycled_is_zeroed);
    ("frames zero protected", `Quick, test_frames_zero_frame_protected);
    ("frames capacity", `Quick, test_frames_capacity);
    ("frames paddr", `Quick, test_frames_paddr_distinct);
    ("page table roundtrip", `Quick, test_page_table_roundtrip);
    ("page table cas", `Quick, test_page_table_cas);
    ("page table oob", `Quick, test_page_table_out_of_range);
    ("unmapped access faults", `Quick, test_unmapped_access_faults);
    ("fresh mapping reads zero", `Quick, test_fresh_mapping_reads_zero);
    ("store faults in", `Quick, test_store_faults_in_one_frame);
    ("store unmapped faults", `Quick, test_store_to_unmapped_faults);
    ("unmap releases", `Quick, test_unmap_releases_frames_and_faults_later);
    ("madvise keeps readable", `Quick, test_madvise_keeps_range_readable);
    ("shared aliases", `Quick, test_map_shared_aliases_pages);
    ("shared releases + rss haywire", `Quick,
     test_map_shared_releases_frames_but_inflates_rss);
    ("shared chunked syscalls", `Quick, test_map_shared_chunked_syscalls);
    ("remap private detaches", `Quick, test_remap_private_detaches_alias);
    ("cas", `Quick, test_cas_semantics);
    ("cas cow leak", `Quick, test_cas_on_cow_page_faults_in_frame);
    ("cas shared no leak", `Quick, test_cas_on_shared_page_does_not_fault);
    ("faa", `Quick, test_fetch_and_add);
    ("dwcas", `Quick, test_dwcas);
    ("null page", `Quick, test_null_page_reserved);
    ("zero frame never written", `Quick, test_zero_frame_never_written);
    ("reserve disjoint", `Quick, test_reserve_disjoint);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ page_table_encode_prop; vmem_model_prop; vmem_frames_conservation_prop ]

let () = Alcotest.run "vmem" [ ("vmem", suite) ]
